// Substrate-dynamics study: failure/recovery events with batched
// migration repair and capacity-aware re-planning (docs/failures.md;
// extends the paper's static-substrate §IV evaluation — not a paper
// figure).
//
// A deterministic failure stream runs against the online test period at
// three intensities: independent node/link outages (light / heavy) and a
// correlated scenario (corr) that adds derived shared-risk groups (racks)
// and a scheduled maintenance window.  Per intensity:
//
//   OLIVE          batched repair (default): one joint min-cost
//                  re-assignment per failure event over the freed
//                  residuals, staged per-request repair as fallback.
//   OLIVE-Seq      the PR-5 one-at-a-time ladder (path patch ->
//                  capacitated re-embed -> greedy), ascending id order.
//   OLIVE-Drop     drop-only repair: every failure-hit embedding is an SLA
//                  violation (the lower bound any repair must beat).
//   OLIVE-Burst    batched repair plus failure-burst re-planning with
//                  capacity-aware masters: re-plan solves price the
//                  capacities as of the launch slot.
//   OLIVE-Nominal  same schedule, but re-plans price *nominal* capacities
//                  (the pre-capacity-overlay behavior) — the ablation pair
//                  for OLIVE-Burst.
//   QuickG         plan-less reference under the same failures.
//   SlotOff        per-slot OFF-VNE re-solve with the current capacities
//                  folded into every master (no migration: each slot
//                  re-seats all active demand).
//
// Headline numbers, asserted by CI from --json: recovery_pct =
// migrated / failure-hit (batched >= one-at-a-time per intensity), and
// OLIVE-Burst's aggregate rejection_rate and total_cost <= OLIVE-Nominal's.
// Rejection rate and cost are the SLA-inclusive service-loss metrics: an
// SLA-dropped window request counts as preempted and incurs the full
// rejection cost Psi, so both fold the violations in.  The raw
// sla_violations column is NOT comparable across the pair — capacity-aware
// planning admits more demand (phantom shares on degraded elements waste
// the nominal plan's acceptance), so it simply has more live embeddings
// exposed to failures.  The patched/reembedded/batched columns expose the
// recovery composition.
#include "bench/common.hpp"
#include "core/olive.hpp"
#include "engine/engine.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace olive;
  const auto& cli = bench::parse_cli(argc, argv);
  const auto scale = cli.scale;
  bench::print_header(
      "Failure study: batched repair and capacity-aware planning, Iris",
      scale);

  const int test_slots = scale.horizon - scale.plan_slots;
  const int period = test_slots / 3;

  struct Intensity {
    const char* name;
    double node_mtbf, link_mtbf;
    bool correlated = false;
  };
  // Expected events per run ~ eligible_elements * test_slots / mtbf.
  const Intensity intensities[] = {
      {"light", 8.0 * test_slots, 16.0 * test_slots},
      {"heavy", 2.0 * test_slots, 4.0 * test_slots},
      {"corr", 4.0 * test_slots, 8.0 * test_slots, true},
  };

  Table table({"intensity", "algorithm", "events", "hit", "migrated",
               "patched", "reembedded", "batched", "sla_violations",
               "recovery_pct", "rejection_rate_pct", "total_cost",
               "replans"});
  std::cout << "intensity,algorithm,events,hit,migrated,patched,reembedded,"
               "batched,sla_violations,recovery_pct,rejection_rate_pct,"
               "total_cost,replans\n";

  for (const Intensity& in : intensities) {
    auto cfg = bench::base_config(scale, "Iris", 1.0);
    cfg.failures.node_mtbf = in.node_mtbf;
    cfg.failures.link_mtbf = in.link_mtbf;
    cfg.failures.repair_mean = 25;
    if (in.correlated) {
      // Correlated hazards: every rack (non-edge node + incident links)
      // is a derived shared-risk group, a scheduled maintenance window
      // takes two transport nodes down mid-run, and brown-outs degrade
      // node capacities (sticky rescale factors — the regime where
      // capacity-aware re-planning pays off, since a nominal-capacity
      // plan keeps committing load a degraded element can no longer
      // hold, so every further shrink breaks more embeddings).
      cfg.failures.derive_groups = true;
      cfg.failures.group_mtbf = 6.0 * test_slots;
      cfg.failures.rescale_rate = 0.2;
      cfg.failures.rescale_min = 0.3;
      cfg.failures.rescale_max = 0.9;
      workload::MaintenanceWindow mw;
      mw.slot = test_slots / 2;
      mw.duration = 20;
      mw.tier = net::Tier::Transport;
      mw.count = 2;
      cfg.failures.maintenance.push_back(mw);
    }

    for (const std::string algo :
         {"OLIVE", "OLIVE-Seq", "OLIVE-Drop", "OLIVE-Burst", "OLIVE-Nominal",
          "QuickG", "SlotOff"}) {
      if (!bench::algo_selected(algo)) continue;
      auto run_cfg = cfg;
      run_cfg.failure_repair = algo == "OLIVE-Drop" ? core::RepairPolicy::Drop
                               : algo == "OLIVE-Seq"
                                   ? core::RepairPolicy::Migrate
                                   : core::RepairPolicy::Batched;

      struct Row {
        double rejection = 0, cost = 0;
        long events = 0, hit = 0, migrated = 0, patched = 0, reembedded = 0,
             batched = 0, sla = 0, replans = 0;
      };
      const int reps = bench::algo_reps(scale, algo);
      const auto rows = bench::map_repetitions(
          run_cfg, reps, [&](const core::Scenario& sc, int rep) -> Row {
            core::SimMetrics m;
            if (algo == "OLIVE-Burst" || algo == "OLIVE-Nominal") {
              engine::EngineConfig ecfg;
              ecfg.sim = sc.config.sim;
              ecfg.failures.trace = sc.failure_trace;
              ecfg.failures.repair = sc.config.failure_repair;
              ecfg.replan.period = period;
              ecfg.replan.failure_burst = 3;
              ecfg.replan.plan = sc.config.plan;
              ecfg.replan.plan.max_rounds = 8;
              ecfg.replan.capacity_aware = algo == "OLIVE-Burst";
              ecfg.replan.seed =
                  Rng(sc.config.seed)
                      .fork(stable_hash("failure-replan"))
                      .fork(static_cast<std::uint64_t>(rep) + 1)();
              engine::Engine eng(sc.substrate, sc.apps, ecfg);
              core::OliveEmbedder oe(sc.substrate, sc.apps, sc.plan, algo);
              m = eng.run(oe, sc.online);
            } else {
              const std::string base_algo =
                  algo == "QuickG" || algo == "SlotOff" ? algo : "OLIVE";
              m = core::run_algorithm(sc, base_algo);
            }
            Row r;
            r.rejection = m.rejection_rate();
            r.cost = m.total_cost();
            r.events = m.failures;
            r.hit = m.failure_hit;
            r.migrated = m.migrations;
            r.patched = m.repairs_patched;
            r.reembedded = m.repairs_reembedded;
            r.batched = m.repairs_batched;
            r.sla = m.sla_violations;
            r.replans = m.replans;
            return r;
          });
      std::vector<double> rej, cost;
      Row sum;
      for (const Row& r : rows) {
        rej.push_back(r.rejection);
        cost.push_back(r.cost);
        sum.events += r.events;
        sum.hit += r.hit;
        sum.migrated += r.migrated;
        sum.patched += r.patched;
        sum.reembedded += r.reembedded;
        sum.batched += r.batched;
        sum.sla += r.sla;
        sum.replans += r.replans;
      }
      const double recovery =
          sum.hit == 0 ? 0.0
                       : static_cast<double>(sum.migrated) / sum.hit;
      bench::stream_row(
          table,
          {in.name, algo, std::to_string(sum.events), std::to_string(sum.hit),
           std::to_string(sum.migrated), std::to_string(sum.patched),
           std::to_string(sum.reembedded), std::to_string(sum.batched),
           std::to_string(sum.sla), Table::num(100 * recovery, 1),
           bench::pct(stats::mean_ci(rej)),
           bench::with_ci(stats::mean_ci(cost)),
           std::to_string(sum.replans)});
    }
  }
  std::cout << "\n";
  table.print(std::cout);
  bench::write_json("fig_failure", {&table});
  return 0;
}
