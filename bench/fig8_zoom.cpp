// Fig. 8 — zoom into slots 200–230 of an Iris run at 140% utilization:
// per-slot demand allocated by each algorithm vs the total requested
// demand (the paper scales demand down by 100 for display; we print raw).
//
// Paper shape: QUICKG loses a large share of the demand even in mild
// bursts; OLIVE tracks SLOTOFF closely except in extreme bursts, where it
// momentarily trails by up to ~2x but still doubles QUICKG.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace olive;
  const auto& cli = bench::parse_cli(argc, argv);
  const auto scale = cli.scale;
  bench::print_header("Fig. 8: allocated vs requested demand, Iris @140%",
                      scale);
  // The paper zooms into slots 200-230; at quick scale the window starts
  // earlier, so zoom relative to the measurement window.
  const int zoom_from = scale.full ? 200 : scale.measure_from + 50;
  const int zoom_to = zoom_from + 30;

  auto cfg = bench::base_config(scale, "Iris", 1.4);
  const core::Scenario sc = core::build_scenario(cfg, 0);

  const auto olive_m = core::run_algorithm(sc, "OLIVE");
  const auto quickg_m = core::run_algorithm(sc, "QuickG");
  const auto slotoff_m = core::run_algorithm(sc, "SlotOff");

  Table table({"slot", "requested", "OLIVE", "QuickG", "SlotOff"});
  for (int t = zoom_from; t < zoom_to; ++t) {
    table.add_row({std::to_string(t),
                   Table::num(olive_m.offered_series.at(t), 0),
                   Table::num(olive_m.allocated_series.at(t), 0),
                   Table::num(quickg_m.allocated_series.at(t), 0),
                   Table::num(slotoff_m.allocated_series.at(t), 0)});
  }
  table.print(std::cout);
  bench::write_json("fig8_zoom", {&table});
  return 0;
}
