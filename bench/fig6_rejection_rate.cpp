// Fig. 6 — request rejection rate vs edge utilization (60%..140%) on the
// four evaluation topologies, for OLIVE, QUICKG and SLOTOFF.
//
// Paper shape: rejection grows with utilization for everyone; OLIVE is far
// below QUICKG (about 2x fewer rejections at high load) and within ~4
// percentage points of SLOTOFF.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace olive;
  const auto& cli = bench::parse_cli(argc, argv);
  const auto scale = cli.scale;
  bench::print_header("Fig. 6: rejection rate vs utilization", scale);

  const std::vector<std::string> topologies{"Iris", "CittaStudi", "5GEN",
                                            "100N150E"};
  const std::vector<std::string> algos{"OLIVE", "QuickG", "SlotOff"};

  Table table({"topology", "utilization_pct", "algorithm",
               "rejection_rate_pct"});
  std::cout << "topology,utilization_pct,algorithm,rejection_rate_pct\n";
  for (const auto& topo : topologies) {
    if (!bench::topology_selected(topo)) continue;
    for (const double u : bench::utilization_points(scale)) {
      const auto cfg = bench::base_config(scale, topo, u);
      for (const auto& algo : algos) {
        if (!bench::algo_selected(algo)) continue;
        if (algo == "SlotOff" && !bench::slotoff_enabled(scale, topo)) continue;
        const auto res =
            bench::run_repetitions(cfg, algo, bench::algo_reps(scale, algo));
        bench::stream_row(table, {topo, Table::num(100 * u, 0), algo,
                                  bench::pct(res.rejection_rate)});
      }
    }
  }
  std::cout << "\n";
  table.print(std::cout);
  bench::write_json("fig6_rejection_rate", {&table});
  return 0;
}
