// Micro-benchmarks of the LP substrate (google-benchmark): simplex solves
// across sizes, warm-started column generation resolves, and MIP solves —
// the primitives that replace CPLEX in this reproduction.
#include <benchmark/benchmark.h>

#include "lp/mip.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace {

using namespace olive;

lp::Model random_lp(Rng& rng, int cols, int rows) {
  lp::Model m;
  for (int c = 0; c < cols; ++c)
    m.add_col(0, rng.uniform(0.5, 2.0), rng.uniform(-5, 5));
  for (int r = 0; r < rows; ++r) {
    const int row = m.add_row(lp::Sense::LE, rng.uniform(1.0, 10.0));
    for (int c = 0; c < cols; ++c)
      if (rng.chance(0.3)) m.add_entry(row, c, rng.uniform(0.0, 2.0));
  }
  return m;
}

void BM_SimplexSolve(benchmark::State& state) {
  Rng rng(static_cast<std::uint64_t>(state.range(0)));
  const int rows = static_cast<int>(state.range(0));
  const lp::Model m = random_lp(rng, rows * 3, rows);
  for (auto _ : state) {
    const auto res = lp::solve_lp(m);
    benchmark::DoNotOptimize(res.objective);
  }
  state.SetLabel(std::to_string(rows) + " rows, " + std::to_string(rows * 3) +
                 " cols");
}
BENCHMARK(BM_SimplexSolve)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_ColumnGenerationResolve(benchmark::State& state) {
  // Cost of adding one column and re-optimizing with a warm basis.
  Rng rng(7);
  const int rows = 128;
  lp::Model m = random_lp(rng, rows, rows);
  for (auto _ : state) {
    state.PauseTiming();
    lp::Simplex solver(m);
    auto res = solver.solve();
    lp::SparseColumn entries;
    for (int r = 0; r < rows; ++r)
      if (rng.chance(0.3)) entries.emplace_back(r, rng.uniform(0.0, 2.0));
    state.ResumeTiming();
    solver.add_column(0, 1, rng.uniform(-5, 0), entries);
    res = solver.resolve();
    benchmark::DoNotOptimize(res.objective);
  }
}
BENCHMARK(BM_ColumnGenerationResolve);

void BM_MipKnapsack(benchmark::State& state) {
  Rng rng(13);
  const int n = static_cast<int>(state.range(0));
  lp::Model m;
  std::vector<int> ints;
  const int row = m.add_row(lp::Sense::LE, n / 3.0);
  for (int c = 0; c < n; ++c) {
    ints.push_back(m.add_col(0, 1, -rng.uniform(1, 10)));
    m.add_entry(row, c, rng.uniform(0.2, 1.5));
  }
  for (auto _ : state) {
    const auto res = lp::solve_mip(m, ints);
    benchmark::DoNotOptimize(res.objective);
  }
}
BENCHMARK(BM_MipKnapsack)->Arg(10)->Arg(20)->Arg(30);

}  // namespace
