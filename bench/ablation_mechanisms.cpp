// Ablation — contribution of OLIVE's compensation mechanisms (§III-C).
//
// Not a paper figure: DESIGN.md calls out OLIVE's three dynamic mechanisms
// (borrowing, preemption, greedy fallback) as distinct design choices; this
// bench isolates each by disabling it and re-running the Fig. 6 setting on
// Iris.  Expected: every mechanism contributes — plan-only rejects the most
// (no way to serve unplanned deviations), no-borrow wastes under-used
// guarantees, no-preempt lets borrowers squat on guaranteed capacity.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace olive;
  const auto& cli = bench::parse_cli(argc, argv);
  const auto scale = cli.scale;
  bench::print_header("Ablation: OLIVE mechanisms, Iris", scale);

  Table table({"utilization_pct", "variant", "rejection_rate_pct",
               "total_cost"});
  std::cout << "utilization_pct,variant,rejection_rate_pct,total_cost\n";
  for (const double u : bench::utilization_points(scale)) {
    const auto cfg = bench::base_config(scale, "Iris", u);
    for (const std::string variant :
         {"OLIVE", "OLIVE-NoBorrow", "OLIVE-NoPreempt", "OLIVE-PlanOnly",
          "QuickG"}) {
      if (!bench::algo_selected(variant)) continue;
      const auto res = bench::run_repetitions(cfg, variant, scale.reps);
      bench::stream_row(table, {Table::num(100 * u, 0), variant,
                                bench::pct(res.rejection_rate),
                                bench::with_ci(res.total_cost)});
    }
  }
  std::cout << "\n";
  table.print(std::cout);
  bench::write_json("ablation_mechanisms", {&table});
  return 0;
}
