// Fig. 11 — rejection balance index (Eq. 20) vs number of rejection
// quantiles, Iris at 140% utilization.
//
// Paper shape: QUICKG (no planning, no quantiles) scores ~0.53; OLIVE rises
// from ~0.65 with one quantile to ~0.84 with two and ~0.89 with 10; going
// beyond 10 quantiles adds nothing (hence P=10 everywhere else).
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace olive;
  const auto& cli = bench::parse_cli(argc, argv);
  const auto scale = cli.scale;
  bench::print_header("Fig. 11: balance index by quantiles, Iris @140%", scale);

  Table table({"algorithm", "quantiles", "balance_index"});
  std::cout << "algorithm,quantiles,balance_index\n";

  auto balance_of = [&](const std::string& algo, int quantiles) {
    auto cfg = bench::base_config(scale, "Iris", 1.4);
    cfg.plan.quantiles = quantiles;
    const auto vals = bench::map_repetitions(
        cfg, scale.reps, [&](const core::Scenario& sc, int) {
          const auto m = core::run_algorithm(sc, algo);
          return stats::rejection_balance_index(m.rejected_by_node_app,
                                                m.requests_by_node);
        });
    return stats::mean_ci(vals);
  };

  if (bench::algo_selected("QuickG")) {
    bench::stream_row(table, {"QuickG", "-",
                              bench::with_ci(balance_of("QuickG", 10), 3)});
  }
  if (bench::algo_selected("OLIVE")) {
    for (const int q : {1, 2, 10, 50}) {
      bench::stream_row(table, {"OLIVE", std::to_string(q),
                                bench::with_ci(balance_of("OLIVE", q), 3)});
    }
  }
  std::cout << "\n";
  table.print(std::cout);
  bench::write_json("fig11_balance", {&table});
  return 0;
}
