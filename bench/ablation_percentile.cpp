// Ablation — the choice of the aggregation percentile (§III-A).
//
// The paper plans for the bootstrapped P̂80 of the per-slot class demand
// "to avoid over-provisioning" relative to the full peak P̂100.  This bench
// sweeps α ∈ {50, 80, 95, 100} on Iris at 100% utilization and also reports
// the §III-A conformance check (share of classes whose observed online Pα
// falls inside the history estimate's 95% CI).
#include "bench/common.hpp"
#include "core/aggregation.hpp"

int main(int argc, char** argv) {
  using namespace olive;
  const auto& cli = bench::parse_cli(argc, argv);
  const auto scale = cli.scale;
  bench::print_header("Ablation: aggregation percentile, Iris @100%", scale);

  Table table({"alpha", "rejection_rate_pct", "total_cost",
               "conforming_classes_pct"});
  std::cout << "alpha,rejection_rate_pct,total_cost,conforming_classes_pct\n";
  for (const double alpha : {50.0, 80.0, 95.0, 100.0}) {
    auto cfg = bench::base_config(scale, "Iris", 1.0);
    cfg.aggregation.alpha = alpha;
    const auto rows = bench::map_repetitions(
        cfg, scale.reps,
        [&](const core::Scenario& sc, int rep) -> std::array<double, 3> {
          const auto m = core::run_algorithm(sc, "OLIVE");
          Rng crng(cfg.seed + 17 * rep);  // per-rep conformance stream
          core::AggregationConfig acfg = cfg.aggregation;
          acfg.horizon = cfg.trace.plan_slots;
          const auto report = core::demand_conformance(
              sc.history, sc.online, static_cast<int>(sc.apps.size()),
              sc.substrate.num_nodes(), acfg, crng);
          return {m.rejection_rate(), m.total_cost(),
                  report.conforming_fraction()};
        });
    std::vector<double> rej, cost, conf;
    for (const auto& r : rows) {
      rej.push_back(r[0]);
      cost.push_back(r[1]);
      conf.push_back(r[2]);
    }
    bench::stream_row(table,
                      {Table::num(alpha, 0), bench::pct(stats::mean_ci(rej)),
                       bench::with_ci(stats::mean_ci(cost)),
                       bench::pct(stats::mean_ci(conf))});
  }
  std::cout << "\n";
  table.print(std::cout);
  bench::write_json("ablation_percentile", {&table});
  return 0;
}
